// Newsroom: a three-level topic hierarchy —
//
//	.news
//	├── .news.sports
//	│   └── .news.sports.football
//	└── .news.politics
//
// with a group of hubs per topic. An event published on
// .news.sports.football is delivered to every football, sports and
// news subscriber — and to NO politics subscriber (the paper's
// zero-parasite property). The demo prints the delivery matrix.
//
//	go run ./examples/newsroom
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"damulticast"
)

const groupSize = 4

type group struct {
	topic string
	subs  []*damulticast.Subscription
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := damulticast.NewMemNetwork()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	topics := []string{".news", ".news.sports", ".news.politics", ".news.sports.football"}
	superOf := map[string]string{
		".news.sports":          ".news",
		".news.politics":        ".news",
		".news.sports.football": ".news.sports",
	}

	// Deterministic demo parameters: every upward link fires.
	params := damulticast.DefaultParams()
	params.G = 1 << 20
	params.A = float64(params.Z)

	names := func(tp string) []string {
		out := make([]string, groupSize)
		for i := range out {
			out[i] = fmt.Sprintf("%s/%d", tp, i)
		}
		return out
	}

	groups := map[string]*group{}
	var hubs []*damulticast.Hub
	defer func() {
		for _, h := range hubs {
			_ = h.Stop()
		}
	}()
	for _, tp := range topics {
		g := &group{topic: tp}
		ids := names(tp)
		for i, id := range ids {
			others := append(append([]string{}, ids[:i]...), ids[i+1:]...)
			hub, err := damulticast.NewHub(net.NewTransport(id),
				damulticast.WithParams(params),
				damulticast.WithTickInterval(50*time.Millisecond),
				damulticast.WithContext(ctx),
			)
			if err != nil {
				return err
			}
			hubs = append(hubs, hub)
			opts := []damulticast.JoinOption{damulticast.WithGroupContacts(others...)}
			if sup, ok := superOf[tp]; ok {
				opts = append(opts, damulticast.WithSuperContacts(sup, names(sup)...))
			}
			sub, err := hub.Join(ctx, tp, opts...)
			if err != nil {
				return err
			}
			g.subs = append(g.subs, sub)
		}
		groups[tp] = g
	}

	// Collect deliveries per group.
	var mu sync.Mutex
	received := map[string]int{}
	var wg sync.WaitGroup
	for _, g := range groups {
		for _, sub := range g.subs {
			wg.Add(1)
			go func(tp string, sub *damulticast.Subscription) {
				defer wg.Done()
				for {
					select {
					case ev, ok := <-sub.Events():
						if !ok {
							return
						}
						mu.Lock()
						received[tp]++
						mu.Unlock()
						_ = ev
					case <-ctx.Done():
						return
					}
				}
			}(g.topic, sub)
		}
	}

	id, err := groups[".news.sports.football"].subs[0].Publish(ctx,
		[]byte("89' — decisive goal in the derby"))
	if err != nil {
		return err
	}
	fmt.Printf("published %s on .news.sports.football\n\n", id)

	// Let gossip settle, then report.
	time.Sleep(2 * time.Second)
	cancel()
	wg.Wait()

	fmt.Println("deliveries per group (publisher does not self-deliver):")
	sorted := make([]string, 0, len(topics))
	sorted = append(sorted, topics...)
	sort.Strings(sorted)
	ok := true
	for _, tp := range sorted {
		mu.Lock()
		got := received[tp]
		mu.Unlock()
		want := groupSize
		if tp == ".news.sports.football" {
			want = groupSize - 1
		}
		if tp == ".news.politics" {
			want = 0
		}
		status := "OK"
		if got != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
			// Politics receiving anything is a protocol violation; the
			// interested groups missing some deliveries can happen on
			// unlucky gossip draws but should be rare at these sizes.
			if tp == ".news.politics" {
				ok = false
			}
		}
		fmt.Printf("  %-24s %d/%d  %s\n", tp, got, groupSize, status)
	}
	if !ok {
		return fmt.Errorf("parasite delivery detected — protocol invariant broken")
	}
	fmt.Println("\nno parasite deliveries: politics subscribers received nothing.")
	return nil
}
