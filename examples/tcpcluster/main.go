// TCP cluster: a self-contained two-level deployment over real TCP
// sockets on localhost — a ".sensors" aggregation group and a
// ".sensors.rack42" group of sensor publishers. Each sensor publishes
// a reading; the aggregators receive everything, demonstrating the
// live runtime end to end (binary frames, length-prefixed TCP, lazy
// connection pooling, one hub per endpoint).
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"damulticast"
)

const (
	numAggregators = 3
	numSensors     = 4
	readings       = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var hubs []*damulticast.Hub
	defer func() {
		for _, h := range hubs {
			_ = h.Stop()
		}
	}()
	mkHub := func(params damulticast.Params) (*damulticast.Hub, error) {
		tr, err := damulticast.NewTCPTransport("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hub, err := damulticast.NewHub(tr,
			damulticast.WithParams(params),
			damulticast.WithTickInterval(50*time.Millisecond),
			damulticast.WithContext(ctx),
		)
		if err != nil {
			return nil, err
		}
		hubs = append(hubs, hub)
		return hub, nil
	}

	// Aggregators: the ".sensors" supergroup.
	var aggAddrs []string
	var aggs []*damulticast.Subscription
	for i := 0; i < numAggregators; i++ {
		hub, err := mkHub(damulticast.DefaultParams())
		if err != nil {
			return err
		}
		sub, err := hub.Join(ctx, ".sensors")
		if err != nil {
			return err
		}
		aggAddrs = append(aggAddrs, hub.Addr())
		aggs = append(aggs, sub)
	}

	// Sensors: the ".sensors.rack42" subgroup, linked upward.
	params := damulticast.DefaultParams()
	params.G = 1 << 20           // every sensor self-elects
	params.A = float64(params.Z) // every upward link fires
	var sensors []*damulticast.Subscription
	var sensorAddrs []string
	for i := 0; i < numSensors; i++ {
		hub, err := mkHub(params)
		if err != nil {
			return err
		}
		sub, err := hub.Join(ctx, ".sensors.rack42",
			damulticast.WithGroupContacts(sensorAddrs...), // earlier sensors
			damulticast.WithSuperContacts(".sensors", aggAddrs...),
		)
		if err != nil {
			return err
		}
		sensorAddrs = append(sensorAddrs, hub.Addr())
		sensors = append(sensors, sub)
	}

	// Collect aggregator deliveries.
	var mu sync.Mutex
	got := map[int]int{}
	var wg sync.WaitGroup
	for i, a := range aggs {
		wg.Add(1)
		go func(i int, a *damulticast.Subscription) {
			defer wg.Done()
			for {
				select {
				case ev, ok := <-a.Events():
					if !ok {
						return
					}
					mu.Lock()
					got[i]++
					mu.Unlock()
					fmt.Printf("aggregator %s <- [%s] %s\n", aggAddrs[i], ev.Topic, ev.Payload)
				case <-ctx.Done():
					return
				}
			}
		}(i, a)
	}

	// Each sensor publishes a few readings.
	total := 0
	for round := 0; round < readings; round++ {
		for i, s := range sensors {
			payload := fmt.Sprintf("temp[%d]=%d.%dC", i, 20+round, i)
			if _, err := s.Publish(ctx, []byte(payload)); err != nil {
				return err
			}
			total++
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Wait until every aggregator saw every reading (gossip converges
	// quickly at this scale) or the timeout hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(got) == numAggregators
		for _, c := range got {
			if c < total {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("aggregators missed readings: %v (want %d each)", got, total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	fmt.Printf("\nall %d aggregators received all %d readings over TCP\n",
		numAggregators, total)
	return nil
}
