// TCP cluster: a self-contained two-level deployment over real TCP
// sockets on localhost — a ".sensors" aggregation group and a
// ".sensors.rack42" group of sensor publishers. Each sensor publishes
// a reading; the aggregators receive everything, demonstrating the
// live runtime end to end (JSON frames, length-prefixed TCP, lazy
// connection pooling).
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"damulticast"
)

const (
	numAggregators = 3
	numSensors     = 4
	readings       = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Aggregators: the ".sensors" supergroup.
	var aggAddrs []string
	var aggs []*damulticast.Node
	for i := 0; i < numAggregators; i++ {
		tr, err := damulticast.NewTCPTransport("127.0.0.1:0")
		if err != nil {
			return err
		}
		aggAddrs = append(aggAddrs, tr.Addr())
		n, err := damulticast.NewNode(damulticast.Config{
			Topic:        ".sensors",
			Transport:    tr,
			TickInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		aggs = append(aggs, n)
	}
	// Tell each aggregator about its group mates, then start.
	for i, n := range aggs {
		_ = i
		if err := n.Start(ctx); err != nil {
			return err
		}
		defer func(n *damulticast.Node) { _ = n.Stop() }(n)
	}

	// Sensors: the ".sensors.rack42" subgroup, linked upward.
	params := damulticast.DefaultParams()
	params.G = 1 << 20           // every sensor self-elects
	params.A = float64(params.Z) // every upward link fires
	var sensors []*damulticast.Node
	var sensorAddrs []string
	for i := 0; i < numSensors; i++ {
		tr, err := damulticast.NewTCPTransport("127.0.0.1:0")
		if err != nil {
			return err
		}
		sensorAddrs = append(sensorAddrs, tr.Addr())
		n, err := damulticast.NewNode(damulticast.Config{
			Topic:         ".sensors.rack42",
			Transport:     tr,
			Params:        params,
			GroupContacts: sensorAddrs[:i], // earlier sensors
			SuperTopic:    ".sensors",
			SuperContacts: aggAddrs,
			TickInterval:  50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if err := n.Start(ctx); err != nil {
			return err
		}
		defer func(n *damulticast.Node) { _ = n.Stop() }(n)
		sensors = append(sensors, n)
	}

	// Collect aggregator deliveries.
	var mu sync.Mutex
	got := map[string]int{}
	var wg sync.WaitGroup
	for _, a := range aggs {
		wg.Add(1)
		go func(a *damulticast.Node) {
			defer wg.Done()
			for {
				select {
				case ev, ok := <-a.Events():
					if !ok {
						return
					}
					mu.Lock()
					got[a.ID()]++
					mu.Unlock()
					fmt.Printf("aggregator %s <- [%s] %s\n", a.ID(), ev.Topic, ev.Payload)
				case <-ctx.Done():
					return
				}
			}
		}(a)
	}

	// Each sensor publishes a few readings.
	total := 0
	for round := 0; round < readings; round++ {
		for i, s := range sensors {
			payload := fmt.Sprintf("temp[%d]=%d.%dC", i, 20+round, i)
			if _, err := s.Publish([]byte(payload)); err != nil {
				return err
			}
			total++
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Wait until every aggregator saw every reading (gossip converges
	// quickly at this scale) or the timeout hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(got) == numAggregators
		for _, c := range got {
			if c < total {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("aggregators missed readings: %v (want %d each)", got, total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	fmt.Printf("\nall %d aggregators received all %d readings over TCP\n",
		numAggregators, total)
	return nil
}
