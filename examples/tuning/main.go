// Tuning: the paper's central trade-off (§V-B, §VI-D) made tangible.
// daMulticast exposes three knobs — g (self-election), a (per-link
// sends) and z (supertopic table size) — that trade the number of
// inter-group messages against the probability that an event actually
// crosses from a group to its supergroup.
//
// This example sweeps each knob on the paper's 1000/100/10 hierarchy
// (stillborn failures at 30%) and prints, per setting:
//
//   - measured inter-group messages (cost),
//   - measured root-group delivery fraction (benefit),
//   - the closed-form pit from the analysis package for comparison.
//
// go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"damulticast/internal/analysis"
	"damulticast/internal/sim"
	"damulticast/internal/topic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	alive = 0.7
	runs  = 3
)

func run() error {
	fmt.Println("knob sweep on the paper's setting (alive=0.7, psucc=0.85)")
	fmt.Println()
	if err := sweep("z (supertopic table size)", []float64{1, 2, 3, 5, 8},
		func(cfg *sim.Config, v float64) { cfg.Params.Z = int(v) },
		func(l *analysis.Level, v float64) { l.Z = int(v) }); err != nil {
		return err
	}
	if err := sweep("g (self-election numerator)", []float64{1, 2, 5, 10, 50},
		func(cfg *sim.Config, v float64) { cfg.Params.G = v },
		func(l *analysis.Level, v float64) { l.G = v }); err != nil {
		return err
	}
	return sweep("a (per-link send numerator)", []float64{1, 2, 3},
		func(cfg *sim.Config, v float64) { cfg.Params.A = v },
		func(l *analysis.Level, v float64) { l.A = v })
}

func sweep(name string, values []float64,
	applySim func(*sim.Config, float64),
	applyAna func(*analysis.Level, float64)) error {
	t0, t1, t2 := sim.PaperTopics()
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("%8s  %12s  %14s  %12s\n", "value", "inter msgs", "root delivery", "pit (theory)")
	for _, v := range values {
		var inter, rel float64
		for seed := int64(0); seed < runs; seed++ {
			cfg := sim.PaperConfig(alive, 100+seed)
			applySim(&cfg, v)
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			inter += float64(res.Inter[[2]topic.Topic{t2, t1}] + res.Inter[[2]topic.Topic{t1, t0}])
			rel += res.Reliability[t0]
		}
		level := analysis.Level{
			S: 1000, C: 5, G: 5, A: 1, Z: 3,
			PSucc: 0.85 * alive, // failed targets behave like lost sends
			Pi:    analysis.GossipReliability(5),
		}
		applyAna(&level, v)
		fmt.Printf("%8.0f  %12.1f  %14.3f  %12.4f\n",
			v, inter/runs, rel/runs, level.Pit())
	}
	fmt.Println()
	return nil
}
