// Quickstart: a publisher and two subscribers on one machine, using
// the in-memory transport. The subscribers are interested in ".news"
// and therefore receive events published on the subtopic
// ".news.sports" — dissemination climbs the topic hierarchy without
// any broker.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"damulticast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := damulticast.NewMemNetwork()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Two subscribers form the ".news" group; each knows the other.
	mkSub := func(id, other string) (*damulticast.Node, error) {
		return damulticast.NewNode(damulticast.Config{
			ID:            id,
			Topic:         ".news",
			Transport:     net.NewTransport(id),
			GroupContacts: []string{other},
			TickInterval:  50 * time.Millisecond,
		})
	}
	sub1, err := mkSub("sub1", "sub2")
	if err != nil {
		return err
	}
	sub2, err := mkSub("sub2", "sub1")
	if err != nil {
		return err
	}

	// The publisher forms the ".news.sports" group and links to the
	// supergroup via explicit contacts (skipping the bootstrap
	// search). a=z forces every upward link to fire, handy for a
	// deterministic demo.
	params := damulticast.DefaultParams()
	params.A = float64(params.Z)
	pub, err := damulticast.NewNode(damulticast.Config{
		ID:            "pub",
		Topic:         ".news.sports",
		Transport:     net.NewTransport("pub"),
		Params:        params,
		SuperTopic:    ".news",
		SuperContacts: []string{"sub1", "sub2"},
		TickInterval:  50 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	for _, n := range []*damulticast.Node{sub1, sub2, pub} {
		if err := n.Start(ctx); err != nil {
			return err
		}
		defer func(n *damulticast.Node) { _ = n.Stop() }(n)
	}

	id, err := pub.Publish([]byte("kickoff at 20:45"))
	if err != nil {
		return err
	}
	fmt.Printf("published event %s on %s\n", id, pub.Topic())

	for _, sub := range []*damulticast.Node{sub1, sub2} {
		select {
		case ev := <-sub.Events():
			fmt.Printf("%s received [%s] %q (event %s)\n",
				sub.ID(), ev.Topic, ev.Payload, ev.ID)
		case <-ctx.Done():
			return fmt.Errorf("%s never received the event", sub.ID())
		}
	}
	return nil
}
