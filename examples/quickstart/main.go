// Quickstart: a publisher and two subscribers on one machine, using
// the in-memory transport and the Hub API. The subscribers are
// interested in ".news" and therefore receive events published on the
// subtopic ".news.sports" — dissemination climbs the topic hierarchy
// without any broker. The publishing hub also demonstrates multi-topic
// multiplexing: it subscribes to ".market" over the same endpoint it
// publishes ".news.sports" events from.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"damulticast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := damulticast.NewMemNetwork()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Two subscriber hubs form the ".news" group; each knows the other.
	mkSub := func(id, other string) (*damulticast.Subscription, error) {
		hub, err := damulticast.NewHub(net.NewTransport(id),
			damulticast.WithTickInterval(50*time.Millisecond),
			damulticast.WithContext(ctx),
		)
		if err != nil {
			return nil, err
		}
		return hub.Join(ctx, ".news", damulticast.WithGroupContacts(other))
	}
	sub1, err := mkSub("sub1", "sub2")
	if err != nil {
		return err
	}
	sub2, err := mkSub("sub2", "sub1")
	if err != nil {
		return err
	}

	// The publishing hub joins ".news.sports" and links to the
	// supergroup via explicit contacts (skipping the bootstrap
	// search). a=z forces every upward link to fire, handy for a
	// deterministic demo.
	params := damulticast.DefaultParams()
	params.A = float64(params.Z)
	pubHub, err := damulticast.NewHub(net.NewTransport("pub"),
		damulticast.WithParams(params),
		damulticast.WithTickInterval(50*time.Millisecond),
		damulticast.WithContext(ctx),
	)
	if err != nil {
		return err
	}
	defer func() { _ = pubHub.Stop() }()
	sports, err := pubHub.Join(ctx, ".news.sports",
		damulticast.WithSuperContacts(".news", "sub1", "sub2"))
	if err != nil {
		return err
	}
	// One endpoint, many topics: the same hub also subscribes to an
	// unrelated group over the same transport.
	if _, err := pubHub.Join(ctx, ".market"); err != nil {
		return err
	}

	id, err := sports.Publish(ctx, []byte("kickoff at 20:45"))
	if err != nil {
		return err
	}
	fmt.Printf("published event %s on %s\n", id, sports.Topic())

	for _, sub := range []*damulticast.Subscription{sub1, sub2} {
		select {
		case ev := <-sub.Events():
			fmt.Printf("%s received [%s] %q (event %s)\n",
				sub.Topic(), ev.Topic, ev.Payload, ev.ID)
		case <-ctx.Done():
			return fmt.Errorf("%s never received the event", sub.Topic())
		}
	}
	return nil
}
