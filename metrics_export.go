package damulticast

import (
	"fmt"
	"io"
)

// WriteMetrics dumps the hub's counters in the Prometheus text
// exposition format (version 0.0.4): the receive-path loss counters,
// a subscription gauge, and per-subscription delivery and recovery
// counters labeled by topic. Wire it to an HTTP handler (damcd does,
// behind -metricsaddr) or scrape it any other way:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
//	    _ = hub.WriteMetrics(w)
//	})
func (h *Hub) WriteMetrics(w io.Writer) error {
	st := h.Stats()
	mw := &metricsWriter{w: w}

	mw.counter("damulticast_malformed_frames_total",
		"Inbound frames rejected by the wire decoder.")
	mw.sample("damulticast_malformed_frames_total", "", st.MalformedFrames)
	mw.counter("damulticast_overflow_frames_total",
		"Frames dropped because the inbox or a subscription's fairness queue was full.")
	mw.sample("damulticast_overflow_frames_total", "", st.OverflowFrames)
	mw.counter("damulticast_unrouted_frames_total",
		"Frames addressed to a group this hub is not subscribed to.")
	mw.sample("damulticast_unrouted_frames_total", "", st.UnroutedFrames)

	mw.gauge("damulticast_subscriptions",
		"Current number of live topic subscriptions.")
	mw.sample("damulticast_subscriptions", "", int64(len(st.Subscriptions)))

	mw.counter("damulticast_dropped_deliveries_total",
		"Events discarded because the application fell behind the Events channel (all policies).")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_dropped_deliveries_total", s.Topic, s.DroppedDeliveries)
	}
	mw.counter("damulticast_dropped_newest_total",
		"Arriving events discarded at a full Events channel (DropNewest policy, plus Block deliveries abandoned at shutdown).")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_dropped_newest_total", s.Topic, s.DroppedNewest)
	}
	mw.counter("damulticast_dropped_oldest_total",
		"Buffered events evicted to admit newer ones (DropOldest policy).")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_dropped_oldest_total", s.Topic, s.DroppedOldest)
	}
	mw.counter("damulticast_recovered_events_total",
		"First-time events obtained through the anti-entropy recovery exchange.")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_recovered_events_total", s.Topic, int64(s.Recovery.Recovered))
	}
	mw.counter("damulticast_recovery_suppressed_total",
		"Stored events whose push was suppressed by a peer's bloom digest.")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_recovery_suppressed_total", s.Topic, int64(s.Recovery.Suppressed))
	}
	mw.counter("damulticast_recovery_truncated_digests_total",
		"Recovery digests built under the hard byte cap at a degraded false-positive rate.")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_recovery_truncated_digests_total", s.Topic, int64(s.Recovery.Truncated))
	}
	mw.counter("damulticast_recovery_evictions_total",
		"Recovery-store entries evicted by age or capacity.")
	for _, s := range st.Subscriptions {
		mw.sample("damulticast_recovery_evictions_total", s.Topic, int64(s.Recovery.GCd))
	}
	return mw.err
}

// metricsWriter emits exposition lines, latching the first write error
// so the callers above read straight through.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (mw *metricsWriter) header(name, typ, help string) {
	if mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (mw *metricsWriter) counter(name, help string) { mw.header(name, "counter", help) }
func (mw *metricsWriter) gauge(name, help string)   { mw.header(name, "gauge", help) }

// sample writes one sample line, labeled by topic when one is given.
// Topics draw from a restricted charset (dots, letters, digits,
// dashes), so no label escaping is needed.
func (mw *metricsWriter) sample(name, topicLabel string, v int64) {
	if mw.err != nil {
		return
	}
	if topicLabel == "" {
		_, mw.err = fmt.Fprintf(mw.w, "%s %d\n", name, v)
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, "%s{topic=%q} %d\n", name, topicLabel, v)
}
