package damulticast

import (
	"sync"

	"damulticast/internal/core"
	"damulticast/internal/wire"
)

// The binary frame codec lives in internal/wire so that internal
// packages (the simulator's figure generators, chiefly) can size and
// parse real frames without importing the root package. This file
// keeps the root-side conveniences: the pooled encode buffers the hot
// send paths borrow, and thin aliases so the rest of the package reads
// naturally.

// codecVersion is the wire format version byte leading every frame —
// see the internal/wire package comment for the layout and the
// compatibility policy.
const codecVersion = wire.Version

// maxPooledEncodeBuf bounds buffers returned to the encode pool;
// occasional giant frames must not pin memory forever.
const maxPooledEncodeBuf = 64 << 10

// ErrCodec is the base error wrapped by all decode failures.
var ErrCodec = wire.ErrCodec

// encBuf wraps a reusable encode buffer. Pooled as a pointer so
// Get/Put never allocate.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return &encBuf{b: make([]byte, 0, 512)} }}

// getEncBuf borrows an empty encode buffer from the pool.
func getEncBuf() *encBuf { return encPool.Get().(*encBuf) }

// putEncBuf returns a buffer to the pool (oversized ones are dropped).
func putEncBuf(buf *encBuf) {
	if cap(buf.b) <= maxPooledEncodeBuf {
		buf.b = buf.b[:0]
		encPool.Put(buf)
	}
}

// appendMessage appends the binary encoding of m to dst and returns
// the extended slice.
func appendMessage(dst []byte, m *core.Message) []byte {
	return wire.AppendMessage(dst, m)
}

// encodeMessage serializes a protocol message into a fresh frame.
func encodeMessage(m *core.Message) ([]byte, error) {
	return wire.EncodeMessage(m)
}

// decodeMessage parses a binary frame produced by appendMessage.
func decodeMessage(payload []byte) (*core.Message, error) {
	return wire.DecodeMessage(payload)
}
