module damulticast

go 1.24
