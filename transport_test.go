package damulticast

import (
	"errors"
	"sync"
	"testing"
	"time"

	"damulticast/internal/core"
	"damulticast/internal/ids"
)

func TestMessageCodecRoundTrip(t *testing.T) {
	m := &core.Message{
		Type:      core.MsgEvent,
		From:      "p1",
		FromTopic: ".a.b",
		Event: &core.Event{
			ID:      ids.EventID{Origin: "p1", Seq: 42},
			Topic:   ".a.b",
			Payload: []byte("payload"),
		},
	}
	raw, err := encodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.From != m.From || got.FromTopic != m.FromTopic {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Event == nil || got.Event.ID != m.Event.ID || string(got.Event.Payload) != "payload" {
		t.Errorf("event mismatch: %+v", got.Event)
	}
}

func TestDecodeMessageMalformed(t *testing.T) {
	if _, err := decodeMessage([]byte("{not json")); err == nil {
		t.Error("malformed frame decoded")
	}
}

func TestMemNetworkBasics(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	b := net.NewTransport("b")
	if a.Addr() != "a" {
		t.Errorf("Addr = %s", a.Addr())
	}
	var mu sync.Mutex
	var got [][]byte
	b.SetHandler(func(p []byte) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	if string(got[0]) != "hi" {
		t.Errorf("payload = %q", got[0])
	}
	mu.Unlock()
}

func TestMemNetworkUnknownAddr(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v", err)
	}
}

func TestMemNetworkDuplicateAddr(t *testing.T) {
	net := NewMemNetwork()
	net.NewTransport("dup")
	if _, err := net.AddTransport("dup"); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewTransport duplicate did not panic")
		}
	}()
	net.NewTransport("dup")
}

func TestMemTransportClose(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	b := net.NewTransport("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	// Sends to a closed/unregistered endpoint fail with unknown addr.
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v", err)
	}
	// Sends from a closed endpoint fail.
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrTransportClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestMemNetworkPayloadIsolation(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	b := net.NewTransport("b")
	var mu sync.Mutex
	var got []byte
	b.SetHandler(func(p []byte) {
		mu.Lock()
		got = p
		mu.Unlock()
	})
	buf := []byte("mutable")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender mutates after Send
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	mu.Lock()
	if string(got) != "mutable" {
		t.Errorf("receiver saw sender mutation: %q", got)
	}
	mu.Unlock()
}

func TestMemNetworkLossRate(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	b := net.NewTransport("b")
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(p []byte) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	net.SetLossRate(0.5)
	const total = 1000
	for i := 0; i < total; i++ {
		_ = a.Send("b", []byte{1})
	}
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	got := count
	mu.Unlock()
	if got < 400 || got > 600 {
		t.Errorf("received %d of %d with 50%% loss", got, total)
	}
	// Clamping.
	net.SetLossRate(-1)
	net.SetLossRate(2)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
