package damulticast

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/wire"
	"damulticast/internal/xrand"
)

// Hub is one daMulticast endpoint hosting any number of topic
// subscriptions over a single transport: one socket, one inbox loop,
// one maintenance ticker, N topic groups. Per the paper's memory
// bound, each subscription costs ln(S)+c+z table entries regardless of
// the hierarchy's size — the hub makes the transport side match, so an
// application interested in ".news", ".news.sports" and ".market.nyse"
// runs one endpoint instead of three.
//
// Inbound frames carry the destination group's topic (the wire demux
// field introduced in codec v3). The receive path peeks that prefix,
// fans frames into bounded per-subscription queues, and drains the
// queues round-robin with a per-subscription quota, so one hot topic
// cannot monopolize the loop while a cold sibling's frames rot in a
// shared inbox. Decoding happens on the loop goroutine against a
// single pooled wire.Decoder (zero steady-state allocations per
// frame); frames for groups the hub is not subscribed to are counted
// and dropped, never misdelivered. All methods are safe for concurrent
// use.
//
// A Hub returned by NewHub is live immediately: Join subscriptions,
// Publish through them, and Stop the hub when done. Note that
// subscriptions of one hub are distinct group members that happen to
// share an address; a subscription cannot serve as another local
// subscription's supergroup contact (membership views never admit
// their own endpoint) — parent and child groups within one OS process
// need distinct transports, as before.
type Hub struct {
	transport Transport
	id        ids.ProcessID
	params    Params
	baseSeed  int64
	tick      time.Duration
	eventBuf  int
	overflow  OverflowPolicy
	baseCtx   context.Context
	loopCtx   context.Context

	inbox   chan []byte
	pubCh   chan pubReq
	joinCh  chan joinReq
	leaveCh chan leaveReq

	started atomic.Bool
	stopped atomic.Bool
	done    chan struct{}
	cancel  context.CancelFunc

	// Receive-path loss counters: frames whose routing prefix or body
	// the decoder rejected, frames discarded because the inbox or a
	// subscription's fairness queue was full, and frames no
	// subscription claimed (traffic for groups this hub is not in).
	// All best-effort losses by design, all counted, never silent.
	malformedFrames atomic.Int64
	overflowFrames  atomic.Int64
	unroutedFrames  atomic.Int64

	mu   sync.Mutex
	subs map[topic.Topic]*Subscription
}

// Subscription is one topic membership of a Hub: a live protocol
// process gossiping in its topic group, delivering that group's events
// on its own channel. Obtained from Hub.Join; ended by Leave (the hub
// and its other subscriptions keep running) or by stopping the hub.
// All methods are safe for concurrent use.
type Subscription struct {
	hub       *Hub
	topic     topic.Topic
	proc      *core.Process
	rng       *rand.Rand
	seeds     []ids.ProcessID
	events    chan Event
	overflow  OverflowPolicy
	findSuper bool
	closeOnce sync.Once

	mu sync.Mutex
	// Per-policy delivery-drop counters (see OverflowPolicy). Which
	// one a full Events channel bumps depends on the subscription's
	// policy; their sum is DroppedDeliveries.
	droppedNewest int64
	droppedOldest int64
}

type pubReq struct {
	sub     *Subscription
	payload []byte
	batch   bool
	// payloads is the batch form; only read when batch is set.
	payloads [][]byte
	reply    chan pubResult
}

type pubResult struct {
	id  string
	ids []string
	err error
}

type joinReq struct {
	sub   *Subscription
	reply chan error
}

type leaveReq struct {
	sub   *Subscription
	reply chan error
}

// NewHub builds a hub over transport and starts its inbox loop. The
// returned hub is live: Join subscriptions next. Stop releases the
// transport.
func NewHub(transport Transport, opts ...HubOption) (*Hub, error) {
	h, err := newHub(transport, opts...)
	if err != nil {
		return nil, err
	}
	if err := h.start(h.baseCtx); err != nil {
		return nil, err
	}
	return h, nil
}

// newHub validates configuration and builds a stopped hub (the Node
// adapter starts it at Node.Start; NewHub starts it immediately).
func newHub(transport Transport, opts ...HubOption) (*Hub, error) {
	if transport == nil {
		return nil, ErrNoTransport
	}
	cfg := hubConfig{
		params:   DefaultParams(),
		tick:     500 * time.Millisecond,
		eventBuf: 256,
		ctx:      context.Background(),
	}
	for _, o := range opts {
		o.applyHub(&cfg)
	}
	if cfg.id == "" {
		cfg.id = transport.Addr()
	}
	if cfg.params == (Params{}) {
		cfg.params = DefaultParams()
	}
	if cfg.tick <= 0 {
		cfg.tick = 500 * time.Millisecond
	}
	if cfg.eventBuf <= 0 {
		cfg.eventBuf = 256
	}
	return &Hub{
		transport: transport,
		id:        ids.ProcessID(cfg.id),
		params:    cfg.params,
		baseSeed:  cfg.seed,
		tick:      cfg.tick,
		eventBuf:  cfg.eventBuf,
		overflow:  cfg.overflow,
		baseCtx:   cfg.ctx,
		inbox:     make(chan []byte, 1024),
		pubCh:     make(chan pubReq),
		joinCh:    make(chan joinReq),
		leaveCh:   make(chan leaveReq),
		done:      make(chan struct{}),
		subs:      make(map[topic.Topic]*Subscription),
	}, nil
}

// ID returns the hub's process id (shared by all its subscriptions).
func (h *Hub) ID() string { return string(h.id) }

// Addr returns the transport address peers reach this hub at.
func (h *Hub) Addr() string { return h.transport.Addr() }

// start launches the inbox loop. The hub stops when ctx is cancelled
// or Stop is called.
func (h *Hub) start(ctx context.Context) error {
	if !h.started.CompareAndSwap(false, true) {
		return ErrAlreadyStarted
	}
	ctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	h.loopCtx = ctx
	h.transport.SetHandler(h.onRaw)
	go h.loop(ctx)
	return nil
}

// Stop terminates the hub: every subscription's delivery channel is
// closed and the transport is released. Safe to call multiple times.
func (h *Hub) Stop() error {
	if !h.started.Load() {
		return ErrNotRunning
	}
	if !h.stopped.CompareAndSwap(false, true) {
		return nil
	}
	h.cancel()
	<-h.done
	return h.transport.Close()
}

// Join subscribes the hub to a topic of the hierarchy and returns the
// live Subscription. ctx bounds the handshake with the hub's loop
// (joining an unresponsive — e.g. concurrently stopping — hub returns
// promptly); the subscription itself lives until Leave or Stop.
// Joining a topic the hub is already subscribed to fails with
// ErrDuplicateTopic.
func (h *Hub) Join(ctx context.Context, topicStr string, opts ...JoinOption) (*Subscription, error) {
	var jc joinConfig
	for _, o := range opts {
		o.applyJoin(&jc)
	}
	sub, err := h.prepare(topicStr, jc)
	if err != nil {
		return nil, err
	}
	if err := h.register(ctx, sub); err != nil {
		return nil, err
	}
	return sub, nil
}

// prepare validates a join and builds the subscription with its
// protocol process, without touching the loop (the Node adapter
// prepares at NewNode and registers at Start).
func (h *Hub) prepare(topicStr string, jc joinConfig) (*Subscription, error) {
	tp, err := topic.Parse(topicStr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTopic, err)
	}
	params := h.params
	if jc.params != nil {
		params = *jc.params
	}
	if params == (Params{}) {
		params = DefaultParams()
	}
	// Without an explicit size hint, the configured contacts are the
	// best lower bound on the group size; sizing the topic table from
	// them keeps every provided contact instead of evicting to the
	// minimum view.
	if params.GroupSizeHint == 0 && len(jc.groupContacts) > 0 {
		params.GroupSizeHint = len(jc.groupContacts) + 1
	}
	eventBuf := h.eventBuf
	if jc.eventBuf > 0 {
		eventBuf = jc.eventBuf
	}
	overflow := h.overflow
	if jc.overflow != nil {
		overflow = *jc.overflow
	}
	seed := jc.seed
	if seed == 0 {
		if h.baseSeed != 0 {
			seed = xrand.SeedFor(h.baseSeed, "sub:"+string(tp))
		} else {
			key := string(h.id) + string(tp)
			seed = int64(len(key))*7919 + hashString(key)
		}
	}
	sub := &Subscription{
		hub:      h,
		topic:    tp,
		rng:      rand.New(rand.NewSource(seed)),
		events:   make(chan Event, eventBuf),
		overflow: overflow,
	}
	for _, s := range jc.seeds {
		if s != string(h.id) {
			sub.seeds = append(sub.seeds, ids.ProcessID(s))
		}
	}
	proc, err := core.NewProcess(h.id, tp, params, (*subEnv)(sub))
	if err != nil {
		return nil, err
	}
	sub.proc = proc
	if len(jc.groupContacts) > 0 {
		contacts := make([]ids.ProcessID, 0, len(jc.groupContacts))
		for _, c := range jc.groupContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedTopicTable(contacts)
	}
	if len(jc.superContacts) > 0 {
		st, err := topic.Parse(jc.superTopic)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidSuperTopic, err)
		}
		if !st.StrictlyIncludes(tp) {
			return nil, fmt.Errorf("%w: %s does not include %s", ErrInvalidSuperTopic, st, tp)
		}
		contacts := make([]ids.ProcessID, 0, len(jc.superContacts))
		for _, c := range jc.superContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedSuperTable(st, contacts)
	}
	// Bootstrap: without provided super contacts, search for them once
	// the subscription registers with the loop.
	sub.findSuper = !tp.IsRoot() && len(jc.superContacts) == 0
	return sub, nil
}

// register hands a prepared subscription to the loop. ctx bounds the
// wait for the loop to accept the request; once accepted, registration
// completes promptly.
func (h *Hub) register(ctx context.Context, sub *Subscription) error {
	if !h.started.Load() {
		return ErrNotRunning
	}
	req := joinReq{sub: sub, reply: make(chan error, 1)}
	select {
	case h.joinCh <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-h.done:
		return ErrNotRunning
	}
	select {
	case err := <-req.reply:
		return err
	case <-h.done:
		return ErrNotRunning
	}
}

// onRaw is the transport receive callback: validate the frame's
// routing prefix (version byte, type, dest) and enqueue the raw frame
// for the loop to demux, decode and dispatch. Both bundled transports
// hand the handler a buffer it owns (fresh per frame), so the frame is
// queued as-is — no copy, no decode, nothing slow on the transport
// goroutine. Prefix-invalid frames and inbox overflow are counted,
// never silent: see Stats.
func (h *Hub) onRaw(payload []byte) {
	if _, _, err := wire.PeekDest(payload); err != nil {
		h.malformedFrames.Add(1)
		return
	}
	select {
	case h.inbox <- payload:
	default:
		h.overflowFrames.Add(1)
	}
}

// Receive-path tuning. Frames queue per subscription (bounded by
// maxQueuedFrames each); every drain quantum serves at most drainQuota
// frames per subscription, so a topic being flooded shares the loop
// with its siblings at worst drainQuota-to-drainQuota; intakeQuota
// bounds how many control-channel operations are serviced between
// quanta so a saturated inbox cannot postpone draining forever.
const (
	maxQueuedFrames = 1024
	drainQuota      = 32
	intakeQuota     = 256
)

// frameQueue is a FIFO of raw frames with O(1) push/pop and reusable
// backing storage (popped slots are nil'd; the slice rewinds when the
// queue empties).
type frameQueue struct {
	frames [][]byte
	head   int
}

func (q *frameQueue) len() int { return len(q.frames) - q.head }

func (q *frameQueue) push(frame []byte, bound int) bool {
	if q.len() >= bound {
		return false
	}
	q.frames = append(q.frames, frame)
	return true
}

func (q *frameQueue) pop() []byte {
	frame := q.frames[q.head]
	q.frames[q.head] = nil
	q.head++
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	return frame
}

// hubLoop is the loop goroutine's private state: the process registry,
// the pooled frame decoder, and the fairness queues. Nothing here is
// touched off the loop goroutine.
type hubLoop struct {
	h   *Hub
	reg *core.Registry
	dec *wire.Decoder
	// queues fans raw frames out by their dest prefix, one bounded
	// queue per subscription (keyed by topic) plus one for dest-less
	// bootstrap traffic; rr is the round-robin drain order over the
	// subscription queues and pending the total frames queued.
	queues  map[string]*frameQueue
	control frameQueue
	rr      []string
	cursor  int
	pending int
}

// loop owns every subscription's core.Process (via the registry): all
// protocol state is touched only here. Raw frames from the inbox are
// fanned into per-subscription queues and drained round-robin, one
// quantum between control-channel polls.
//
//damcvet:nonblocking
func (h *Hub) loop(ctx context.Context) {
	l := &hubLoop{
		h:      h,
		reg:    core.NewRegistry(),
		dec:    wire.NewDecoder(),
		queues: make(map[string]*frameQueue),
	}
	defer func() {
		h.mu.Lock()
		subs := make([]*Subscription, 0, len(h.subs))
		for _, s := range h.subs {
			subs = append(subs, s)
		}
		h.mu.Unlock()
		for _, s := range subs {
			s.closeEvents()
		}
		close(h.done)
	}()

	ticker := time.NewTicker(h.tick)
	defer ticker.Stop()
	for {
		if l.pending == 0 {
			select {
			case <-ctx.Done():
				return
			case frame := <-h.inbox:
				l.demux(frame)
			case req := <-h.pubCh:
				l.publish(req)
			case req := <-h.joinCh:
				l.join(req)
			case req := <-h.leaveCh:
				l.leave(req)
			case <-ticker.C:
				l.reg.Tick()
			}
			continue
		}
		// Frames are pending: poll the control channels first (bounded,
		// so a saturated inbox cannot starve the drain), then spend one
		// round-robin quantum on the queues.
	intake:
		for i := 0; i < intakeQuota; i++ {
			select {
			case <-ctx.Done():
				return
			case frame := <-h.inbox:
				l.demux(frame)
			case req := <-h.pubCh:
				l.publish(req)
			case req := <-h.joinCh:
				l.join(req)
			case req := <-h.leaveCh:
				l.leave(req)
			case <-ticker.C:
				l.reg.Tick()
			default:
				break intake
			}
		}
		l.drainQuantum()
	}
}

// demux routes one raw frame into its subscription's queue by the dest
// prefix (validated in onRaw; re-peeking costs a few ns). Frames for
// unknown groups are dropped here, before any decode is paid for them.
//
//damcvet:nonblocking
func (l *hubLoop) demux(frame []byte) {
	_, dest, err := wire.PeekDest(frame)
	if err != nil {
		l.h.malformedFrames.Add(1)
		return
	}
	q := &l.control
	if len(dest) > 0 {
		q = l.queues[string(dest)] // zero-alloc map lookup
		if q == nil {
			l.h.unroutedFrames.Add(1)
			return
		}
	}
	if !q.push(frame, maxQueuedFrames) {
		l.h.overflowFrames.Add(1)
		return
	}
	l.pending++
}

// drainQuantum serves one fairness round: the control queue fully
// (dest-less bootstrap floods are rare and never bulky), then up to
// drainQuota frames from each subscription queue, starting after where
// the previous round left off.
//
//damcvet:nonblocking
func (l *hubLoop) drainQuantum() {
	for l.control.len() > 0 {
		l.pending--
		l.handleFrame(l.control.pop())
	}
	n := len(l.rr)
	for i := 0; i < n; i++ {
		if l.cursor >= len(l.rr) {
			l.cursor = 0
		}
		q := l.queues[l.rr[l.cursor]]
		l.cursor++
		for served := 0; served < drainQuota && q.len() > 0; served++ {
			l.pending--
			l.handleFrame(q.pop())
		}
	}
}

// handleFrame decodes one frame against the loop's pooled decoder and
// feeds it to the routed process. The decoded message and its events
// are scratch, valid only until the next decode — fine for every
// handler (they consume synchronously, cloning what they deliver) —
// except a process whose recovery store retains events, which gets
// deep copies.
//
//damcvet:nonblocking
func (l *hubLoop) handleFrame(frame []byte) {
	m, err := l.dec.Decode(frame)
	if err != nil {
		l.h.malformedFrames.Add(1)
		return
	}
	p := l.reg.Route(m)
	if p == nil {
		l.h.unroutedFrames.Add(1)
		return
	}
	if p.RetainsEvents() {
		if m.Event != nil {
			m.Event = m.Event.Clone()
		}
		if len(m.Events) > 0 {
			evs := make([]*core.Event, len(m.Events))
			for i, ev := range m.Events {
				evs[i] = ev.Clone()
			}
			m.Events = evs
		}
	}
	p.HandleMessage(m)
}

func (l *hubLoop) publish(req pubReq) {
	// The engine's stopped sentinel is internal; surface the exported
	// lifecycle sentinel so callers outside this module can errors.Is
	// it.
	if req.batch {
		evs, err := req.sub.proc.PublishBatch(req.payloads)
		if err != nil {
			if errors.Is(err, core.ErrStopped) {
				err = fmt.Errorf("%w: subscription has left", ErrNotRunning)
			}
			req.reply <- pubResult{err: err} //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
			return
		}
		eids := make([]string, len(evs))
		for i, ev := range evs {
			eids[i] = ev.ID.String()
		}
		req.reply <- pubResult{ids: eids} //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
		return
	}
	ev, err := req.sub.proc.Publish(req.payload)
	if err != nil {
		if errors.Is(err, core.ErrStopped) {
			err = fmt.Errorf("%w: subscription has left", ErrNotRunning)
		}
		req.reply <- pubResult{err: err} //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
		return
	}
	req.reply <- pubResult{id: ev.ID.String()} //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
}

func (l *hubLoop) join(req joinReq) {
	sub := req.sub
	if err := l.reg.Add(sub.proc); err != nil {
		req.reply <- fmt.Errorf("%w: %s", ErrDuplicateTopic, sub.topic) //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
		return
	}
	key := string(sub.topic)
	l.queues[key] = &frameQueue{}
	l.rr = append(l.rr, key)
	l.h.mu.Lock()
	l.h.subs[sub.topic] = sub
	l.h.mu.Unlock()
	if sub.findSuper {
		sub.proc.StartFindSuperContact()
	}
	req.reply <- nil //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
}

func (l *hubLoop) leave(req leaveReq) {
	sub := req.sub
	if l.reg.Get(sub.topic) != sub.proc {
		req.reply <- ErrNotRunning //damcvet:allow loopblock(already left; reply is buffered cap 1, written once per request)
		return
	}
	sub.proc.Leave()
	l.reg.Remove(sub.topic)
	key := string(sub.topic)
	if q := l.queues[key]; q != nil {
		// Frames still queued for the departed group are routing
		// losses now.
		if n := q.len(); n > 0 {
			l.h.unroutedFrames.Add(int64(n))
			l.pending -= n
		}
		delete(l.queues, key)
		for i, k := range l.rr {
			if k == key {
				l.rr = append(l.rr[:i], l.rr[i+1:]...)
				break
			}
		}
	}
	l.h.mu.Lock()
	delete(l.h.subs, sub.topic)
	l.h.mu.Unlock()
	sub.closeEvents()
	req.reply <- nil //damcvet:allow loopblock(reply is buffered cap 1, written once per request)
}

// Topic returns the subscription's topic.
func (s *Subscription) Topic() string { return string(s.topic) }

// Events returns the subscription's delivery channel. It is closed
// when the subscription leaves or the hub stops. What happens when the
// application stops reading it is the subscription's OverflowPolicy.
func (s *Subscription) Events() <-chan Event { return s.events }

// DroppedDeliveries reports how many events were discarded at the full
// Events channel, under any policy.
func (s *Subscription) DroppedDeliveries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedNewest + s.droppedOldest
}

// RecoveryStats returns the subscription's anti-entropy recovery
// counters (all zero unless Params.RecoverPeriod enables recovery).
func (s *Subscription) RecoveryStats() core.RecoveryStats { return s.proc.RecoveryStats() }

// Publish disseminates an event of the subscription's topic and
// returns its id. It blocks until the hub's loop accepts the
// publication, ctx is done, or the hub stops — a publish stuck behind
// a wedged loop returns promptly with ctx.Err(). Publish is sugar for
// a one-payload PublishBatch: same bookkeeping, same dissemination,
// one loop round-trip and at least one frame per event — producers
// with several events in hand should batch them.
func (s *Subscription) Publish(ctx context.Context, payload []byte) (string, error) {
	res, err := s.publish(ctx, pubReq{sub: s, payload: payload})
	return res.id, err
}

// PublishBatch disseminates one event per payload, in order, and
// returns their ids. The whole batch is handed to the loop in one
// round-trip, and events elected for the same (peer, group) pair ride
// one EVENT_BATCH frame instead of one frame each — the batched path
// the live throughput numbers come from. Event ids, ordering and
// recovery bookkeeping are identical to the same sequence of Publish
// calls. An empty batch returns (nil, nil).
func (s *Subscription) PublishBatch(ctx context.Context, payloads [][]byte) ([]string, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	res, err := s.publish(ctx, pubReq{sub: s, batch: true, payloads: payloads})
	return res.ids, err
}

func (s *Subscription) publish(ctx context.Context, req pubReq) (pubResult, error) {
	h := s.hub
	if !h.started.Load() {
		return pubResult{}, ErrNotRunning
	}
	req.reply = make(chan pubResult, 1)
	select {
	case h.pubCh <- req:
	case <-ctx.Done():
		return pubResult{}, ctx.Err()
	case <-h.done:
		return pubResult{}, ErrNotRunning
	}
	select {
	case res := <-req.reply:
		return res, res.err
	case <-ctx.Done():
		return pubResult{}, ctx.Err()
	case <-h.done:
		// The reply is buffered, so a service that raced the shutdown
		// may still have landed; prefer it over reporting failure.
		select {
		case res := <-req.reply:
			return res, res.err
		default:
			return pubResult{}, ErrNotRunning
		}
	}
}

// Leave announces a graceful departure to every known peer of this
// subscription's groups (they purge this endpoint immediately instead
// of waiting out failure suspicion), closes the subscription's Events
// channel and removes it from the hub. The hub and its other
// subscriptions are undisturbed. ctx bounds the handshake with the
// hub's loop. Leaving twice, or after the hub stopped, returns
// ErrNotRunning.
func (s *Subscription) Leave(ctx context.Context) error {
	h := s.hub
	if !h.started.Load() {
		return ErrNotRunning
	}
	req := leaveReq{sub: s, reply: make(chan error, 1)}
	select {
	case h.leaveCh <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-h.done:
		return ErrNotRunning
	}
	select {
	case err := <-req.reply:
		return err
	case <-h.done:
		return ErrNotRunning
	}
}

// closeEvents closes the delivery channel exactly once (Leave and hub
// shutdown may race).
func (s *Subscription) closeEvents() {
	s.closeOnce.Do(func() { close(s.events) })
}

// SubscriptionStats is a point-in-time snapshot of one subscription's
// counters.
type SubscriptionStats struct {
	// Topic is the subscription's topic.
	Topic string
	// Overflow is the subscription's configured overflow policy.
	Overflow OverflowPolicy
	// DroppedDeliveries counts events discarded at the full Events
	// channel under any policy: DroppedNewest + DroppedOldest.
	DroppedDeliveries int64
	// DroppedNewest counts arriving events discarded (DropNewest, and
	// Block deliveries abandoned at hub shutdown).
	DroppedNewest int64
	// DroppedOldest counts buffered events evicted to admit newer
	// ones (DropOldest).
	DroppedOldest int64
	// Recovery holds the anti-entropy recovery counters.
	Recovery core.RecoveryStats
}

// Stats snapshots the subscription's counters.
func (s *Subscription) Stats() SubscriptionStats {
	s.mu.Lock()
	newest, oldest := s.droppedNewest, s.droppedOldest
	s.mu.Unlock()
	return SubscriptionStats{
		Topic:             string(s.topic),
		Overflow:          s.overflow,
		DroppedDeliveries: newest + oldest,
		DroppedNewest:     newest,
		DroppedOldest:     oldest,
		Recovery:          s.proc.RecoveryStats(),
	}
}

// HubStats aggregates every counter of a hub and its live
// subscriptions in one call.
type HubStats struct {
	// MalformedFrames counts inbound frames the wire decoder rejected
	// (bad routing prefix at the transport callback, or bad body at
	// the loop's full decode).
	MalformedFrames int64
	// OverflowFrames counts raw frames dropped because the inbox or a
	// subscription's fairness queue was full.
	OverflowFrames int64
	// UnroutedFrames counts frames no subscription claimed (traffic
	// for groups this hub is not — or no longer — in).
	UnroutedFrames int64
	// DroppedDeliveries sums the per-subscription delivery drops.
	DroppedDeliveries int64
	// Subscriptions holds one snapshot per live subscription, sorted
	// by topic.
	Subscriptions []SubscriptionStats
}

// Stats snapshots the hub's receive-path counters and every live
// subscription's counters.
func (h *Hub) Stats() HubStats {
	st := HubStats{
		MalformedFrames: h.malformedFrames.Load(),
		OverflowFrames:  h.overflowFrames.Load(),
		UnroutedFrames:  h.unroutedFrames.Load(),
	}
	h.mu.Lock()
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].topic < subs[j].topic })
	for _, s := range subs {
		ss := s.Stats()
		st.DroppedDeliveries += ss.DroppedDeliveries
		st.Subscriptions = append(st.Subscriptions, ss)
	}
	return st
}

// subEnv adapts *Subscription to core.Env. Methods run on the hub's
// loop goroutine.
type subEnv Subscription

func (e *subEnv) Send(to ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	// Transport errors are best-effort losses by design. Transports
	// must not retain the payload, so the buffer is safe to reuse.
	_ = e.hub.transport.Send(string(to), buf.b)
	putEncBuf(buf)
}

// SendBatch implements core.SendBatcher: the message is serialized
// exactly once, and the same pooled frame goes out to every target.
func (e *subEnv) SendBatch(targets []ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	for _, to := range targets {
		_ = e.hub.transport.Send(string(to), buf.b)
	}
	putEncBuf(buf)
}

// Deliver hands one event to the application, applying the
// subscription's overflow policy when the Events channel is full. It
// runs on the loop goroutine — the same goroutine that closes the
// channel — so sends never race a close.
//
//damcvet:nonblocking
//damcvet:allow framealias(Payload aliases the per-frame inbox buffer, which both transports hand over fresh and the hub never reuses; the pooled Event struct is copied field-by-field here)
func (e *subEnv) Deliver(ev *core.Event) {
	out := Event{
		ID:      ev.ID.String(),
		Topic:   string(ev.Topic),
		Payload: ev.Payload,
	}
	switch e.overflow {
	case Block:
		select {
		case e.events <- out:
		case <-e.hub.loopCtx.Done():
			// Hub shutdown unblocks the delivery; the abandoned event
			// counts as a newest-drop.
			e.mu.Lock()
			e.droppedNewest++
			e.mu.Unlock()
		}
	case DropOldest:
		for {
			select {
			case e.events <- out:
				return
			default:
			}
			// Full: evict the oldest unread event and retry. Converges
			// because only this goroutine sends and capacity is ≥ 1;
			// a concurrent reader only makes room faster.
			select {
			case <-e.events:
				e.mu.Lock()
				e.droppedOldest++
				e.mu.Unlock()
			default:
			}
		}
	default: // DropNewest
		select {
		case e.events <- out:
		default:
			e.mu.Lock()
			e.droppedNewest++
			e.mu.Unlock()
		}
	}
}

func (e *subEnv) Neighborhood(k int) []ids.ProcessID {
	// The bootstrap overlay is the configured seeds plus whatever
	// group mates we already know.
	pool := make([]ids.ProcessID, 0, len(e.seeds)+8)
	pool = append(pool, e.seeds...)
	pool = append(pool, e.proc.TopicTable()...)
	return xrand.SampleIDs(e.rng, pool, k)
}

func (e *subEnv) Rand() *rand.Rand { return e.rng }
