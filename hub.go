package damulticast

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Hub is one daMulticast endpoint hosting any number of topic
// subscriptions over a single transport: one socket, one inbox loop,
// one maintenance ticker, N topic groups. Per the paper's memory
// bound, each subscription costs ln(S)+c+z table entries regardless of
// the hierarchy's size — the hub makes the transport side match, so an
// application interested in ".news", ".news.sports" and ".market.nyse"
// runs one endpoint instead of three.
//
// Inbound frames carry the destination group's topic (the wire demux
// field introduced in codec v3) and are routed to the matching subscription's
// protocol process; frames for groups the hub is not subscribed to are
// counted and dropped, never misdelivered. All methods are safe for
// concurrent use.
//
// A Hub returned by NewHub is live immediately: Join subscriptions,
// Publish through them, and Stop the hub when done. Note that
// subscriptions of one hub are distinct group members that happen to
// share an address; a subscription cannot serve as another local
// subscription's supergroup contact (membership views never admit
// their own endpoint) — parent and child groups within one OS process
// need distinct transports, as before.
type Hub struct {
	transport Transport
	id        ids.ProcessID
	params    Params
	baseSeed  int64
	tick      time.Duration
	eventBuf  int
	baseCtx   context.Context

	inbox   chan *core.Message
	pubCh   chan pubReq
	joinCh  chan joinReq
	leaveCh chan leaveReq

	started atomic.Bool
	stopped atomic.Bool
	done    chan struct{}
	cancel  context.CancelFunc

	// Receive-path loss counters: frames the decoder rejected, decoded
	// messages discarded on inbox overflow, and decoded messages no
	// subscription claimed (traffic for groups this hub is not in).
	// All best-effort losses by design, all counted, never silent.
	malformedFrames atomic.Int64
	overflowFrames  atomic.Int64
	unroutedFrames  atomic.Int64

	mu   sync.Mutex
	subs map[topic.Topic]*Subscription
}

// Subscription is one topic membership of a Hub: a live protocol
// process gossiping in its topic group, delivering that group's events
// on its own channel. Obtained from Hub.Join; ended by Leave (the hub
// and its other subscriptions keep running) or by stopping the hub.
// All methods are safe for concurrent use.
type Subscription struct {
	hub       *Hub
	topic     topic.Topic
	proc      *core.Process
	rng       *rand.Rand
	seeds     []ids.ProcessID
	events    chan Event
	findSuper bool
	closeOnce sync.Once

	mu      sync.Mutex
	dropped int64 // deliveries dropped because the app fell behind
}

type pubReq struct {
	sub     *Subscription
	payload []byte
	reply   chan pubResult
}

type pubResult struct {
	id  string
	err error
}

type joinReq struct {
	sub   *Subscription
	reply chan error
}

type leaveReq struct {
	sub   *Subscription
	reply chan error
}

// NewHub builds a hub over transport and starts its inbox loop. The
// returned hub is live: Join subscriptions next. Stop releases the
// transport.
func NewHub(transport Transport, opts ...HubOption) (*Hub, error) {
	h, err := newHub(transport, opts...)
	if err != nil {
		return nil, err
	}
	if err := h.start(h.baseCtx); err != nil {
		return nil, err
	}
	return h, nil
}

// newHub validates configuration and builds a stopped hub (the Node
// adapter starts it at Node.Start; NewHub starts it immediately).
func newHub(transport Transport, opts ...HubOption) (*Hub, error) {
	if transport == nil {
		return nil, ErrNoTransport
	}
	cfg := hubConfig{
		params:   DefaultParams(),
		tick:     500 * time.Millisecond,
		eventBuf: 256,
		ctx:      context.Background(),
	}
	for _, o := range opts {
		o.applyHub(&cfg)
	}
	if cfg.id == "" {
		cfg.id = transport.Addr()
	}
	if cfg.params == (Params{}) {
		cfg.params = DefaultParams()
	}
	if cfg.tick <= 0 {
		cfg.tick = 500 * time.Millisecond
	}
	if cfg.eventBuf <= 0 {
		cfg.eventBuf = 256
	}
	return &Hub{
		transport: transport,
		id:        ids.ProcessID(cfg.id),
		params:    cfg.params,
		baseSeed:  cfg.seed,
		tick:      cfg.tick,
		eventBuf:  cfg.eventBuf,
		baseCtx:   cfg.ctx,
		inbox:     make(chan *core.Message, 1024),
		pubCh:     make(chan pubReq),
		joinCh:    make(chan joinReq),
		leaveCh:   make(chan leaveReq),
		done:      make(chan struct{}),
		subs:      make(map[topic.Topic]*Subscription),
	}, nil
}

// ID returns the hub's process id (shared by all its subscriptions).
func (h *Hub) ID() string { return string(h.id) }

// Addr returns the transport address peers reach this hub at.
func (h *Hub) Addr() string { return h.transport.Addr() }

// start launches the inbox loop. The hub stops when ctx is cancelled
// or Stop is called.
func (h *Hub) start(ctx context.Context) error {
	if !h.started.CompareAndSwap(false, true) {
		return ErrAlreadyStarted
	}
	ctx, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	h.transport.SetHandler(h.onRaw)
	go h.loop(ctx)
	return nil
}

// Stop terminates the hub: every subscription's delivery channel is
// closed and the transport is released. Safe to call multiple times.
func (h *Hub) Stop() error {
	if !h.started.Load() {
		return ErrNotRunning
	}
	if !h.stopped.CompareAndSwap(false, true) {
		return nil
	}
	h.cancel()
	<-h.done
	return h.transport.Close()
}

// Join subscribes the hub to a topic of the hierarchy and returns the
// live Subscription. ctx bounds the handshake with the hub's loop
// (joining an unresponsive — e.g. concurrently stopping — hub returns
// promptly); the subscription itself lives until Leave or Stop.
// Joining a topic the hub is already subscribed to fails with
// ErrDuplicateTopic.
func (h *Hub) Join(ctx context.Context, topicStr string, opts ...JoinOption) (*Subscription, error) {
	var jc joinConfig
	for _, o := range opts {
		o.applyJoin(&jc)
	}
	sub, err := h.prepare(topicStr, jc)
	if err != nil {
		return nil, err
	}
	if err := h.register(ctx, sub); err != nil {
		return nil, err
	}
	return sub, nil
}

// prepare validates a join and builds the subscription with its
// protocol process, without touching the loop (the Node adapter
// prepares at NewNode and registers at Start).
func (h *Hub) prepare(topicStr string, jc joinConfig) (*Subscription, error) {
	tp, err := topic.Parse(topicStr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTopic, err)
	}
	params := h.params
	if jc.params != nil {
		params = *jc.params
	}
	if params == (Params{}) {
		params = DefaultParams()
	}
	// Without an explicit size hint, the configured contacts are the
	// best lower bound on the group size; sizing the topic table from
	// them keeps every provided contact instead of evicting to the
	// minimum view.
	if params.GroupSizeHint == 0 && len(jc.groupContacts) > 0 {
		params.GroupSizeHint = len(jc.groupContacts) + 1
	}
	eventBuf := h.eventBuf
	if jc.eventBuf > 0 {
		eventBuf = jc.eventBuf
	}
	seed := jc.seed
	if seed == 0 {
		if h.baseSeed != 0 {
			seed = xrand.SeedFor(h.baseSeed, "sub:"+string(tp))
		} else {
			key := string(h.id) + string(tp)
			seed = int64(len(key))*7919 + hashString(key)
		}
	}
	sub := &Subscription{
		hub:    h,
		topic:  tp,
		rng:    rand.New(rand.NewSource(seed)),
		events: make(chan Event, eventBuf),
	}
	for _, s := range jc.seeds {
		if s != string(h.id) {
			sub.seeds = append(sub.seeds, ids.ProcessID(s))
		}
	}
	proc, err := core.NewProcess(h.id, tp, params, (*subEnv)(sub))
	if err != nil {
		return nil, err
	}
	sub.proc = proc
	if len(jc.groupContacts) > 0 {
		contacts := make([]ids.ProcessID, 0, len(jc.groupContacts))
		for _, c := range jc.groupContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedTopicTable(contacts)
	}
	if len(jc.superContacts) > 0 {
		st, err := topic.Parse(jc.superTopic)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidSuperTopic, err)
		}
		if !st.StrictlyIncludes(tp) {
			return nil, fmt.Errorf("%w: %s does not include %s", ErrInvalidSuperTopic, st, tp)
		}
		contacts := make([]ids.ProcessID, 0, len(jc.superContacts))
		for _, c := range jc.superContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedSuperTable(st, contacts)
	}
	// Bootstrap: without provided super contacts, search for them once
	// the subscription registers with the loop.
	sub.findSuper = !tp.IsRoot() && len(jc.superContacts) == 0
	return sub, nil
}

// register hands a prepared subscription to the loop. ctx bounds the
// wait for the loop to accept the request; once accepted, registration
// completes promptly.
func (h *Hub) register(ctx context.Context, sub *Subscription) error {
	if !h.started.Load() {
		return ErrNotRunning
	}
	req := joinReq{sub: sub, reply: make(chan error, 1)}
	select {
	case h.joinCh <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-h.done:
		return ErrNotRunning
	}
	select {
	case err := <-req.reply:
		return err
	case <-h.done:
		return ErrNotRunning
	}
}

// onRaw is the transport receive callback: decode and enqueue,
// dropping when the inbox overflows (channels are best-effort). Drops
// are counted, never silent: see Stats.
func (h *Hub) onRaw(payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		h.malformedFrames.Add(1)
		return
	}
	select {
	case h.inbox <- m:
	default:
		h.overflowFrames.Add(1)
	}
}

// loop owns every subscription's core.Process (via the registry): all
// protocol state is touched only here.
func (h *Hub) loop(ctx context.Context) {
	reg := core.NewRegistry()
	defer func() {
		h.mu.Lock()
		subs := make([]*Subscription, 0, len(h.subs))
		for _, s := range h.subs {
			subs = append(subs, s)
		}
		h.mu.Unlock()
		for _, s := range subs {
			s.closeEvents()
		}
		close(h.done)
	}()

	ticker := time.NewTicker(h.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-h.inbox:
			if !reg.Handle(m) {
				h.unroutedFrames.Add(1)
			}
		case req := <-h.pubCh:
			ev, err := req.sub.proc.Publish(req.payload)
			if err != nil {
				// The engine's stopped sentinel is internal; surface the
				// exported lifecycle sentinel so callers outside this
				// module can errors.Is it.
				if errors.Is(err, core.ErrStopped) {
					err = fmt.Errorf("%w: subscription has left", ErrNotRunning)
				}
				req.reply <- pubResult{err: err}
				continue
			}
			req.reply <- pubResult{id: ev.ID.String()}
		case req := <-h.joinCh:
			sub := req.sub
			if err := reg.Add(sub.proc); err != nil {
				req.reply <- fmt.Errorf("%w: %s", ErrDuplicateTopic, sub.topic)
				continue
			}
			h.mu.Lock()
			h.subs[sub.topic] = sub
			h.mu.Unlock()
			if sub.findSuper {
				sub.proc.StartFindSuperContact()
			}
			req.reply <- nil
		case req := <-h.leaveCh:
			sub := req.sub
			if reg.Get(sub.topic) != sub.proc {
				req.reply <- ErrNotRunning // already left
				continue
			}
			sub.proc.Leave()
			reg.Remove(sub.topic)
			h.mu.Lock()
			delete(h.subs, sub.topic)
			h.mu.Unlock()
			sub.closeEvents()
			req.reply <- nil
		case <-ticker.C:
			reg.Tick()
		}
	}
}

// Topic returns the subscription's topic.
func (s *Subscription) Topic() string { return string(s.topic) }

// Events returns the subscription's delivery channel. It is closed
// when the subscription leaves or the hub stops.
func (s *Subscription) Events() <-chan Event { return s.events }

// DroppedDeliveries reports how many events were discarded because the
// Events channel was full.
func (s *Subscription) DroppedDeliveries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// RecoveryStats returns the subscription's anti-entropy recovery
// counters (all zero unless Params.RecoverPeriod enables recovery).
func (s *Subscription) RecoveryStats() core.RecoveryStats { return s.proc.RecoveryStats() }

// Publish disseminates an event of the subscription's topic and
// returns its id. It blocks until the hub's loop accepts the
// publication, ctx is done, or the hub stops — a publish stuck behind
// a wedged loop returns promptly with ctx.Err().
func (s *Subscription) Publish(ctx context.Context, payload []byte) (string, error) {
	h := s.hub
	if !h.started.Load() {
		return "", ErrNotRunning
	}
	req := pubReq{sub: s, payload: payload, reply: make(chan pubResult, 1)}
	select {
	case h.pubCh <- req:
	case <-ctx.Done():
		return "", ctx.Err()
	case <-h.done:
		return "", ErrNotRunning
	}
	select {
	case res := <-req.reply:
		return res.id, res.err
	case <-ctx.Done():
		return "", ctx.Err()
	case <-h.done:
		// The reply is buffered, so a service that raced the shutdown
		// may still have landed; prefer it over reporting failure.
		select {
		case res := <-req.reply:
			return res.id, res.err
		default:
			return "", ErrNotRunning
		}
	}
}

// Leave announces a graceful departure to every known peer of this
// subscription's groups (they purge this endpoint immediately instead
// of waiting out failure suspicion), closes the subscription's Events
// channel and removes it from the hub. The hub and its other
// subscriptions are undisturbed. ctx bounds the handshake with the
// hub's loop. Leaving twice, or after the hub stopped, returns
// ErrNotRunning.
func (s *Subscription) Leave(ctx context.Context) error {
	h := s.hub
	if !h.started.Load() {
		return ErrNotRunning
	}
	req := leaveReq{sub: s, reply: make(chan error, 1)}
	select {
	case h.leaveCh <- req:
	case <-ctx.Done():
		return ctx.Err()
	case <-h.done:
		return ErrNotRunning
	}
	select {
	case err := <-req.reply:
		return err
	case <-h.done:
		return ErrNotRunning
	}
}

// closeEvents closes the delivery channel exactly once (Leave and hub
// shutdown may race).
func (s *Subscription) closeEvents() {
	s.closeOnce.Do(func() { close(s.events) })
}

// SubscriptionStats is a point-in-time snapshot of one subscription's
// counters.
type SubscriptionStats struct {
	// Topic is the subscription's topic.
	Topic string
	// DroppedDeliveries counts events discarded because the
	// application fell behind the Events channel.
	DroppedDeliveries int64
	// Recovery holds the anti-entropy recovery counters.
	Recovery core.RecoveryStats
}

// Stats snapshots the subscription's counters.
func (s *Subscription) Stats() SubscriptionStats {
	return SubscriptionStats{
		Topic:             string(s.topic),
		DroppedDeliveries: s.DroppedDeliveries(),
		Recovery:          s.proc.RecoveryStats(),
	}
}

// HubStats aggregates every counter of a hub and its live
// subscriptions in one call.
type HubStats struct {
	// MalformedFrames counts inbound frames the wire decoder rejected.
	MalformedFrames int64
	// OverflowFrames counts decoded messages dropped on inbox
	// overflow.
	OverflowFrames int64
	// UnroutedFrames counts decoded messages no subscription claimed
	// (traffic for groups this hub is not — or no longer — in).
	UnroutedFrames int64
	// DroppedDeliveries sums the per-subscription delivery drops.
	DroppedDeliveries int64
	// Subscriptions holds one snapshot per live subscription, sorted
	// by topic.
	Subscriptions []SubscriptionStats
}

// Stats snapshots the hub's receive-path counters and every live
// subscription's counters.
func (h *Hub) Stats() HubStats {
	st := HubStats{
		MalformedFrames: h.malformedFrames.Load(),
		OverflowFrames:  h.overflowFrames.Load(),
		UnroutedFrames:  h.unroutedFrames.Load(),
	}
	h.mu.Lock()
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].topic < subs[j].topic })
	for _, s := range subs {
		ss := s.Stats()
		st.DroppedDeliveries += ss.DroppedDeliveries
		st.Subscriptions = append(st.Subscriptions, ss)
	}
	return st
}

// subEnv adapts *Subscription to core.Env. Methods run on the hub's
// loop goroutine.
type subEnv Subscription

func (e *subEnv) Send(to ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	// Transport errors are best-effort losses by design. Transports
	// must not retain the payload, so the buffer is safe to reuse.
	_ = e.hub.transport.Send(string(to), buf.b)
	putEncBuf(buf)
}

// SendBatch implements core.SendBatcher: the message is serialized
// exactly once, and the same pooled frame goes out to every target.
func (e *subEnv) SendBatch(targets []ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	for _, to := range targets {
		_ = e.hub.transport.Send(string(to), buf.b)
	}
	putEncBuf(buf)
}

func (e *subEnv) Deliver(ev *core.Event) {
	out := Event{
		ID:      ev.ID.String(),
		Topic:   string(ev.Topic),
		Payload: ev.Payload,
	}
	select {
	case e.events <- out:
	default:
		e.mu.Lock()
		e.dropped++
		e.mu.Unlock()
	}
}

func (e *subEnv) Neighborhood(k int) []ids.ProcessID {
	// The bootstrap overlay is the configured seeds plus whatever
	// group mates we already know.
	pool := make([]ids.ProcessID, 0, len(e.seeds)+8)
	pool = append(pool, e.seeds...)
	pool = append(pool, e.proc.TopicTable()...)
	return xrand.SampleIDs(e.rng, pool, k)
}

func (e *subEnv) Rand() *rand.Rand { return e.rng }
