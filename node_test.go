package damulticast

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// liveParams speeds the protocol up for tests.
func liveParams() Params {
	p := DefaultParams()
	p.ShufflePeriod = 1
	p.MaintainPeriod = 2
	p.FindSuperPeriod = 2
	return p
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Topic: ".a"}); !errors.Is(err, ErrNoTransport) {
		t.Errorf("err = %v", err)
	}
	net := NewMemNetwork()
	if _, err := NewNode(Config{Topic: "bad", Transport: net.NewTransport("x1")}); err == nil {
		t.Error("bad topic accepted")
	}
	// Super topic must strictly include the topic.
	_, err := NewNode(Config{
		Topic:         ".a.b",
		Transport:     net.NewTransport("x2"),
		SuperContacts: []string{"y"},
		SuperTopic:    ".zzz",
	})
	if err == nil {
		t.Error("unrelated super topic accepted")
	}
	_, err = NewNode(Config{
		Topic:         ".a.b",
		Transport:     net.NewTransport("x3"),
		SuperContacts: []string{"y"},
		SuperTopic:    "not-a-topic",
	})
	if err == nil {
		t.Error("invalid super topic accepted")
	}
	// Invalid params bubble up.
	bad := DefaultParams()
	bad.Z = -1
	if _, err := NewNode(Config{Topic: ".a", Transport: net.NewTransport("x4"), Params: bad}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestNodeDefaultsIDFromTransport(t *testing.T) {
	net := NewMemNetwork()
	n, err := NewNode(Config{Topic: ".a", Transport: net.NewTransport("addr-7")})
	if err != nil {
		t.Fatal(err)
	}
	if n.ID() != "addr-7" {
		t.Errorf("ID = %s", n.ID())
	}
	if n.Topic() != ".a" {
		t.Errorf("Topic = %s", n.Topic())
	}
}

func TestNodeLifecycle(t *testing.T) {
	net := NewMemNetwork()
	n, err := NewNode(Config{Topic: ".a", Transport: net.NewTransport("n1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Publish(nil); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Publish before Start = %v", err)
	}
	if err := n.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Stop before Start = %v", err)
	}
	ctx := context.Background()
	if err := n.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(ctx); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("second Start = %v", err)
	}
	id, err := n.Publish([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Error("empty event id")
	}
	if err := n.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := n.Stop(); err != nil {
		t.Errorf("repeated Stop = %v", err)
	}
	// Events channel is closed after Stop.
	select {
	case _, open := <-n.Events():
		if open {
			t.Error("event received after stop")
		}
	case <-time.After(time.Second):
		t.Error("events channel not closed")
	}
}

func TestNodeContextCancelStops(t *testing.T) {
	net := NewMemNetwork()
	n, err := NewNode(Config{Topic: ".a", Transport: net.NewTransport("nc")})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := n.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-n.Events():
		if open {
			t.Error("unexpected event")
		}
	case <-time.After(2 * time.Second):
		t.Error("node did not stop on context cancel")
	}
}

// startCluster builds one group of n nodes fully meshed via
// GroupContacts, plus optional super contacts, and starts them all.
func startCluster(t *testing.T, net *MemNetwork, tp string, names []string, superTopic string, superContacts []string) []*Node {
	t.Helper()
	var nodes []*Node
	for _, name := range names {
		others := make([]string, 0, len(names)-1)
		for _, o := range names {
			if o != name {
				others = append(others, o)
			}
		}
		cfg := Config{
			ID:            name,
			Topic:         tp,
			Transport:     net.NewTransport(name),
			Params:        liveParams(),
			GroupContacts: others,
			TickInterval:  20 * time.Millisecond,
		}
		if len(superContacts) > 0 {
			cfg.SuperTopic = superTopic
			cfg.SuperContacts = superContacts
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Stop() })
		nodes = append(nodes, n)
	}
	return nodes
}

func names(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func TestLiveGroupDissemination(t *testing.T) {
	net := NewMemNetwork()
	nodes := startCluster(t, net, ".chat", names("c", 8), "", nil)

	id, err := nodes[0].Publish([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:] {
		select {
		case ev := <-n.Events():
			if ev.ID != id {
				t.Errorf("node %s got event %s, want %s", n.ID(), ev.ID, id)
			}
			if ev.Topic != ".chat" {
				t.Errorf("topic = %s", ev.Topic)
			}
			if string(ev.Payload) != "hello" {
				t.Errorf("payload = %q", ev.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("node %s never received the event", n.ID())
		}
	}
}

func TestLiveEventClimbsToSupergroup(t *testing.T) {
	net := NewMemNetwork()
	supers := startCluster(t, net, ".news", names("s", 4), "", nil)
	superNames := names("s", 4)

	// Publisher group with pSel forced to 1 for test determinism.
	pubParams := liveParams()
	pubParams.G = 1 << 20
	pubParams.A = float64(pubParams.Z) // pA = 1
	var pubs []*Node
	for _, name := range names("p", 3) {
		others := make([]string, 0, 2)
		for _, o := range names("p", 3) {
			if o != name {
				others = append(others, o)
			}
		}
		n, err := NewNode(Config{
			ID:            name,
			Topic:         ".news.sports",
			Transport:     net.NewTransport(name),
			Params:        pubParams,
			GroupContacts: others,
			SuperTopic:    ".news",
			SuperContacts: superNames,
			TickInterval:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Stop() })
		pubs = append(pubs, n)
	}

	id, err := pubs[0].Publish([]byte("goal"))
	if err != nil {
		t.Fatal(err)
	}
	// Every .news subscriber must receive the .news.sports event.
	for _, s := range supers {
		select {
		case ev := <-s.Events():
			if ev.ID != id || ev.Topic != ".news.sports" {
				t.Errorf("super %s got %+v", s.ID(), ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("super %s never received the climbed event", s.ID())
		}
	}
}

func TestLiveBootstrapViaSeeds(t *testing.T) {
	net := NewMemNetwork()
	supers := startCluster(t, net, ".news", names("b", 3), "", nil)
	_ = supers

	// A joiner knows only seeds (the supergroup members), not its
	// supergroup: FIND_SUPER_CONTACT must locate them.
	j, err := NewNode(Config{
		ID:           "joiner",
		Topic:        ".news.tech",
		Transport:    net.NewTransport("joiner"),
		Params:       liveParams(),
		Seeds:        names("b", 3),
		TickInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Stop() })

	// Wait for the supertopic table to initialize, then publish; the
	// event must reach a .news subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("bootstrap never completed")
		}
		time.Sleep(50 * time.Millisecond)
		// Probe: publish and see if any super receives within a tick.
		if _, err := j.Publish([]byte("probe")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-supers[0].Events():
			return // success
		case <-supers[1].Events():
			return
		case <-supers[2].Events():
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func TestNodeLeave(t *testing.T) {
	net := NewMemNetwork()
	nodes := startCluster(t, net, ".room", names("l", 4), "", nil)

	// One node leaves gracefully; peers purge it, and the leaver
	// cannot publish anymore.
	if err := nodes[3].Leave(); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[3].Publish(nil); !errors.Is(err, ErrNotRunning) {
		t.Errorf("publish after leave = %v", err)
	}
	// A leave on a never-started node errors.
	fresh, err := NewNode(Config{Topic: ".x", Transport: net.NewTransport("fresh")})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Leave(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("leave before start = %v", err)
	}
	// Remaining nodes still disseminate among themselves.
	id, err := nodes[0].Publish([]byte("still here"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:3] {
		select {
		case ev := <-n.Events():
			if ev.ID != id {
				t.Errorf("node %s got %s", n.ID(), ev.ID)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("node %s never received after peer left", n.ID())
		}
	}
}

func TestDroppedDeliveriesCounted(t *testing.T) {
	net := NewMemNetwork()
	// Buffer of 1: flooding publishes from a peer overflows it.
	sub, err := NewNode(Config{
		ID:          "slow",
		Topic:       ".x",
		Transport:   net.NewTransport("slow"),
		Params:      liveParams(),
		EventBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewNode(Config{
		ID:            "fast",
		Topic:         ".x",
		Transport:     net.NewTransport("fast"),
		Params:        liveParams(),
		GroupContacts: []string{"slow"},
		TickInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sub.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pub.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Stop(); _ = pub.Stop() })

	for i := 0; i < 50; i++ {
		if _, err := pub.Publish([]byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sub.DroppedDeliveries() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded despite overflow")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
